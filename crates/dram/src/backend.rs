//! DRAM backend trait + registry: the one place backend kinds are
//! interpreted.
//!
//! The simulator above this crate (controller, memory pipeline stage,
//! partitions, CLI, bench drivers) selects a memory substrate by a
//! [`DramBackendKind`] carried opaquely in
//! [`SystemConfig::dram_backend`]; *only this module* matches on the
//! kind. It mirrors `pimsim_core::policy::registry` exactly: descriptors
//! with names, aliases, and [`ParamSpec`]s; `parse_spec("lp5x:ranks=4")`;
//! and a name ↔ kind ↔ builder round trip, so a backend added here is
//! immediately reachable from every front-end.
//!
//! # What the trait owns (and what it doesn't)
//!
//! A [`DramBackend`] owns the backend's *presets and construction*: DRAM
//! geometry, a [`TimingPreset`]-derived timing set, the address-map
//! layout, the energy coefficients, and the construction of the channel
//! state machine and address mapper. It deliberately does **not** own a
//! parallel implementation of timing legality, `earliest_issue`, or the
//! PIM burst closed form: those live once in [`Channel`], fully
//! parameterized by [`DramTiming`]/[`DramConfig`], and both backends
//! exercise the same engine with different parameters. That sharing is
//! the point — the event-driven fast paths are backend-agnostic, and the
//! LP5X preset proves it by enabling the `t_faw`/`t_wtr` rolling-window
//! constraints that default to 0 (disabled) on HBM.
//!
//! # Example
//!
//! ```
//! use pimsim_dram::backend;
//! use pimsim_types::{DramBackendKind, SystemConfig};
//!
//! let kind = backend::parse_spec("lp5x:ranks=4").unwrap();
//! assert_eq!(kind, DramBackendKind::Lp5x { ranks: 4 });
//! let cfg = backend::system_config(kind);
//! assert_eq!(cfg.dram.channels, 32); // 8 physical channels x 4 ranks
//! assert!(cfg.timing.t_faw > 0, "LP5X enables the tFAW window");
//! ```

use pimsim_types::{
    AddressMapConfig, DramBackendKind, DramConfig, DramTiming, SystemConfig, TimingPreset,
};

use crate::channel::Channel;
use crate::energy::EnergyConfig;
use crate::mapping::AddressMapper;

/// One tunable integer parameter of a registered backend.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Parameter key as written in a spec string, e.g. `"ranks"`.
    pub key: &'static str,
    /// One-line description shown in help listings.
    pub help: &'static str,
}

/// A registered DRAM backend.
#[derive(Debug, Clone, Copy)]
pub struct BackendDescriptor {
    /// Canonical spec name, e.g. `"lp5x"`.
    pub name: &'static str,
    /// Accepted alternative spellings (matched case-insensitively).
    pub aliases: &'static [&'static str],
    /// One-line description shown in help listings.
    pub summary: &'static str,
    /// Tunable parameters accepted after `name:` in a spec string.
    pub params: &'static [ParamSpec],
    default_kind: DramBackendKind,
}

impl BackendDescriptor {
    /// The backend's [`DramBackendKind`] with its registered defaults.
    pub fn default_kind(&self) -> DramBackendKind {
        self.default_kind
    }
}

/// Error from [`parse_spec`] or [`apply_param`]: an unknown backend name,
/// unknown parameter key, or out-of-range value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendParseError(pub String);

impl std::fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BackendParseError {}

/// A memory substrate: presets plus construction of the per-channel
/// machinery. See the module docs for the ownership boundary.
///
/// Methods take the (parameterized) kind because descriptors are static
/// while kinds carry tunables like the LP5X rank count.
pub trait DramBackend: Sync {
    /// Canonical registry name.
    fn name(&self) -> &'static str;

    /// DRAM geometry for `kind`.
    fn dram_config(&self, kind: DramBackendKind) -> DramConfig;

    /// Timing set for `kind`, built through [`DramTiming::preset`].
    fn timing(&self, kind: DramBackendKind) -> DramTiming;

    /// Address-map layout matching the geometry of `kind`.
    fn addr_map(&self, kind: DramBackendKind) -> AddressMapConfig;

    /// Energy coefficients for this substrate.
    fn energy(&self, kind: DramBackendKind) -> EnergyConfig;

    /// Builds one channel's state machine. Both provided backends share
    /// the parameterized [`Channel`] engine; the hook exists so the
    /// construction path is the trait, not a hard-coded constructor.
    fn build_channel(&self, dram: &DramConfig, timing: &DramTiming) -> Channel {
        Channel::new(dram, timing)
    }

    /// Builds the physical-address decoder for this backend's layout.
    fn build_mapper(
        &self,
        map: &AddressMapConfig,
        dram: &DramConfig,
        word_bytes: usize,
    ) -> AddressMapper {
        AddressMapper::new(map, dram, word_bytes)
    }

    /// Installs this backend's geometry, timing, and address map into
    /// `cfg` (leaving GPU/NoC/cache/MC parameters untouched) and stamps
    /// `cfg.dram_backend`.
    fn configure(&self, kind: DramBackendKind, cfg: &mut SystemConfig) {
        cfg.dram = self.dram_config(kind);
        cfg.timing = self.timing(kind);
        cfg.addr_map = self.addr_map(kind);
        cfg.dram_backend = kind;
    }
}

/// The paper's HBM substrate: Table I geometry and timing, exactly the
/// `SystemConfig::default()` values — configuring it is a no-op on a
/// default config, which is what keeps the HBM golden fixtures
/// byte-identical across the backend lift.
struct HbmBackend;

impl DramBackend for HbmBackend {
    fn name(&self) -> &'static str {
        "hbm"
    }

    fn dram_config(&self, _kind: DramBackendKind) -> DramConfig {
        DramConfig::default()
    }

    fn timing(&self, _kind: DramBackendKind) -> DramTiming {
        DramTiming::preset(TimingPreset::Hbm2Table1)
    }

    fn addr_map(&self, _kind: DramBackendKind) -> AddressMapConfig {
        AddressMapConfig::table1()
    }

    fn energy(&self, _kind: DramBackendKind) -> EnergyConfig {
        EnergyConfig::default()
    }
}

/// LPDDR5X-PIM: 8 physical channels of `ranks` ranks each, with the PIM
/// units placed per rank (LP5X-PIM Sim-style). Each rank is simulated as
/// its own channel — private banks, row buffers, PIM FUs, and timing
/// state — which models rank-level PIM concurrency at the cost of
/// ignoring command-bus sharing between ranks of one physical channel
/// (a deliberate simplification, recorded in `DESIGN.md` §4j).
struct Lp5xBackend;

/// Physical LPDDR5X channels on the package.
const LP5X_PHYSICAL_CHANNELS: usize = 8;

impl Lp5xBackend {
    fn ranks(kind: DramBackendKind) -> usize {
        match kind {
            DramBackendKind::Lp5x { ranks } => ranks,
            DramBackendKind::Hbm => unreachable!("lp5x backend handed an hbm kind"),
        }
    }
}

impl DramBackend for Lp5xBackend {
    fn name(&self) -> &'static str {
        "lp5x"
    }

    fn dram_config(&self, kind: DramBackendKind) -> DramConfig {
        DramConfig {
            channels: LP5X_PHYSICAL_CHANNELS * Self::ranks(kind),
            banks: 16,
            bank_groups: 4,
            clock_mhz: 937.5,
            rows_per_bank: 1 << 13,
            cols_per_row: 64,
            // Four wide FUs per rank (vs. HBM's eight per channel), each
            // shared by four banks, with a deeper register file so the
            // per-bank RF depth the PIM kernels assume (8) is unchanged.
            pim_fus_per_channel: 4,
            pim_rf_entries: 32,
        }
    }

    fn timing(&self, _kind: DramBackendKind) -> DramTiming {
        DramTiming::preset(TimingPreset::Lpddr5xPim)
    }

    fn addr_map(&self, kind: DramBackendKind) -> AddressMapConfig {
        // Table I's layout with the channel-bit run widened/narrowed to
        // the simulated channel count (ranks fold into channel bits).
        let channels = LP5X_PHYSICAL_CHANNELS * Self::ranks(kind);
        let d = channels.trailing_zeros() as usize;
        let mut p = String::with_capacity(20 + d);
        p.push_str(&"R".repeat(13));
        p.push_str("BBBCCCB");
        p.push_str(&"D".repeat(d));
        p.push_str("CCC");
        AddressMapConfig::BitPattern(p)
    }

    fn energy(&self, _kind: DramBackendKind) -> EnergyConfig {
        // LPDDR5X-class ballpark figures per 32 B access: cheaper array
        // operations and background power (mobile-optimized core), but
        // pricier I/O than HBM's through-silicon paths. Like the HBM
        // defaults, meant for relative comparisons.
        EnergyConfig {
            e_act: 650.0,
            e_pre: 400.0,
            e_rd_array: 120.0,
            e_wr_array: 130.0,
            e_io: 400.0,
            e_pim_fu: 50.0,
            e_ref: 18_000.0,
            p_background: 20.0,
        }
    }
}

static HBM: HbmBackend = HbmBackend;
static LP5X: Lp5xBackend = Lp5xBackend;

static REGISTRY: &[BackendDescriptor] = &[
    BackendDescriptor {
        name: "hbm",
        aliases: &["hbm2"],
        summary: "Table I HBM: 32 channels, per-channel PIM units (the paper's substrate)",
        params: &[],
        default_kind: DramBackendKind::Hbm,
    },
    BackendDescriptor {
        name: "lp5x",
        aliases: &["lpddr5x", "lp5x-pim"],
        summary: "LPDDR5X-PIM: 8 physical channels, per-rank PIM units, tFAW/tWTR enabled",
        params: &[ParamSpec {
            key: "ranks",
            help: "ranks per physical channel, each simulated as its own channel \
                   (power of two, 1..=8)",
        }],
        default_kind: DramBackendKind::Lp5x { ranks: 4 },
    },
];

/// All registered backends, in presentation order.
pub fn descriptors() -> &'static [BackendDescriptor] {
    REGISTRY
}

/// Finds a backend by canonical name or alias (case-insensitive).
pub fn lookup(name: &str) -> Option<&'static BackendDescriptor> {
    REGISTRY.iter().find(|d| {
        d.name.eq_ignore_ascii_case(name) || d.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    })
}

/// The registered canonical name for a kind, regardless of its parameters.
pub fn canonical_name(kind: DramBackendKind) -> &'static str {
    let name = match kind {
        DramBackendKind::Hbm => "hbm",
        DramBackendKind::Lp5x { .. } => "lp5x",
    };
    debug_assert!(lookup(name).is_some(), "canonical name not registered");
    name
}

/// The backend implementation for a kind.
pub fn backend_for(kind: DramBackendKind) -> &'static dyn DramBackend {
    match kind {
        DramBackendKind::Hbm => &HBM,
        DramBackendKind::Lp5x { .. } => &LP5X,
    }
}

/// Returns `kind` with the tunable parameter `key` set to `value`.
///
/// Fails if the backend has no such parameter or the value is outside the
/// parameter's domain.
pub fn apply_param(
    kind: DramBackendKind,
    key: &str,
    value: u64,
) -> Result<DramBackendKind, BackendParseError> {
    let name = canonical_name(kind);
    let unknown = || {
        let d = lookup(name).expect("canonical name registered");
        let keys: Vec<&str> = d.params.iter().map(|p| p.key).collect();
        BackendParseError(if keys.is_empty() {
            format!("backend '{name}' has no tunable parameters (got '{key}')")
        } else {
            format!(
                "backend '{name}' has no tunable parameter '{key}' (accepts: {})",
                keys.join(", ")
            )
        })
    };
    match (kind, key) {
        (DramBackendKind::Lp5x { .. }, "ranks") => {
            if !(1..=8).contains(&value) || !value.is_power_of_two() {
                return Err(BackendParseError(format!(
                    "{name}: value {value} out of range for 'ranks' \
                     (accepts a power of two in 1..=8)"
                )));
            }
            #[allow(clippy::cast_possible_truncation)]
            Ok(DramBackendKind::Lp5x {
                ranks: value as usize,
            })
        }
        _ => Err(unknown()),
    }
}

/// Parses a backend spec string: a registered name, optionally followed
/// by `:key=value` pairs separated by commas.
///
/// `"hbm"`, `"lp5x"`, `"lp5x:ranks=2"`.
pub fn parse_spec(spec: &str) -> Result<DramBackendKind, BackendParseError> {
    let (name, params) = match spec.split_once(':') {
        Some((n, p)) => (n.trim(), Some(p)),
        None => (spec.trim(), None),
    };
    let desc = lookup(name).ok_or_else(|| {
        let names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
        BackendParseError(format!(
            "unknown backend '{name}' (known: {})",
            names.join(", ")
        ))
    })?;
    let mut kind = desc.default_kind();
    if let Some(params) = params {
        for pair in params.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                BackendParseError(format!("{}: expected 'key=value', got '{pair}'", desc.name))
            })?;
            let value: u64 = value.trim().parse().map_err(|_| {
                BackendParseError(format!(
                    "{}: parameter '{}' needs an unsigned integer, got '{}'",
                    desc.name,
                    key.trim(),
                    value.trim()
                ))
            })?;
            kind = apply_param(kind, key.trim(), value)?;
        }
    }
    Ok(kind)
}

/// Installs `kind`'s geometry, timing, and address map into `cfg`,
/// leaving GPU/NoC/cache/MC parameters untouched.
pub fn configure(kind: DramBackendKind, cfg: &mut SystemConfig) {
    backend_for(kind).configure(kind, cfg);
}

/// A full default system configured for `kind` (Table I GPU side plus the
/// backend's memory side).
pub fn system_config(kind: DramBackendKind) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    configure(kind, &mut cfg);
    cfg
}

/// Parses a backend spec and installs it into `cfg` in one step — the
/// front-end entry point behind `--dram <spec>` flags.
///
/// # Errors
///
/// Returns the [`BackendParseError`] from [`parse_spec`].
pub fn apply_spec(
    spec: &str,
    cfg: &mut SystemConfig,
) -> Result<DramBackendKind, BackendParseError> {
    let kind = parse_spec(spec)?;
    configure(kind, cfg);
    Ok(kind)
}

/// Builds one channel's state machine through the backend recorded in
/// `cfg` — the construction path the memory controller uses, so no crate
/// above this one names a concrete channel constructor.
pub fn channel_for(cfg: &SystemConfig) -> Channel {
    backend_for(cfg.dram_backend).build_channel(&cfg.dram, &cfg.timing)
}

/// Builds the address mapper through the backend recorded in `cfg`.
pub fn mapper_for(cfg: &SystemConfig) -> AddressMapper {
    backend_for(cfg.dram_backend).build_mapper(&cfg.addr_map, &cfg.dram, cfg.dram_word_bytes())
}

/// Energy coefficients for the backend recorded in `cfg`.
pub fn energy_for(cfg: &SystemConfig) -> EnergyConfig {
    backend_for(cfg.dram_backend).energy(cfg.dram_backend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_descriptor_round_trips_name_and_kind() {
        for d in descriptors() {
            let kind = d.default_kind();
            assert_eq!(canonical_name(kind), d.name, "name/kind mismatch");
            assert_eq!(parse_spec(d.name).unwrap(), kind, "parse({})", d.name);
            for alias in d.aliases {
                assert_eq!(parse_spec(alias).unwrap(), kind, "alias {alias}");
            }
            assert_eq!(backend_for(kind).name(), d.name, "builder mismatch");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(lookup("HBM").unwrap().name, "hbm");
        assert_eq!(lookup("LPDDR5X").unwrap().name, "lp5x");
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn parse_spec_applies_parameters() {
        assert_eq!(
            parse_spec("lp5x:ranks=2").unwrap(),
            DramBackendKind::Lp5x { ranks: 2 }
        );
        assert_eq!(
            parse_spec("lp5x").unwrap(),
            DramBackendKind::Lp5x { ranks: 4 }
        );
        assert_eq!(parse_spec(" hbm ").unwrap(), DramBackendKind::Hbm);
    }

    #[test]
    fn parse_spec_rejects_bad_input() {
        assert!(parse_spec("warp-speed").unwrap_err().0.contains("unknown"));
        assert!(parse_spec("hbm:ranks=4")
            .unwrap_err()
            .0
            .contains("no tunable parameter"));
        assert!(parse_spec("lp5x:ranks")
            .unwrap_err()
            .0
            .contains("key=value"));
        assert!(parse_spec("lp5x:ranks=banana")
            .unwrap_err()
            .0
            .contains("unsigned"));
        assert!(parse_spec("lp5x:ranks=3")
            .unwrap_err()
            .0
            .contains("out of range"));
        assert!(parse_spec("lp5x:ranks=16")
            .unwrap_err()
            .0
            .contains("out of range"));
    }

    #[test]
    fn apply_param_rejects_foreign_keys() {
        let e = apply_param(DramBackendKind::Hbm, "ranks", 4).unwrap_err();
        assert!(e.0.contains("no tunable parameters"), "{e}");
        let e = apply_param(DramBackendKind::Lp5x { ranks: 4 }, "banks", 8).unwrap_err();
        assert!(e.0.contains("accepts: ranks"), "{e}");
    }

    #[test]
    fn hbm_configure_is_identity_on_a_default_config() {
        // The bit-identical-goldens guarantee in one assertion: routing a
        // default config through the registry must change nothing.
        let mut cfg = SystemConfig::default();
        let before = cfg.clone();
        configure(DramBackendKind::Hbm, &mut cfg);
        assert_eq!(cfg, before);
    }

    #[test]
    fn every_backend_yields_a_valid_system() {
        for d in descriptors() {
            let cfg = system_config(d.default_kind());
            cfg.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
            // The construction hooks must agree with the installed config.
            let ch = channel_for(&cfg);
            assert_eq!(ch.num_banks(), cfg.dram.banks);
            let m = mapper_for(&cfg);
            let d0 = m.decode(pimsim_types::PhysAddr(0));
            assert_eq!(m.encode(d0.channel, d0.bank, d0.row, d0.col).0, 0);
        }
    }

    #[test]
    fn lp5x_rank_counts_scale_simulated_channels() {
        for ranks in [1usize, 2, 4, 8] {
            let kind = DramBackendKind::Lp5x { ranks };
            let cfg = system_config(kind);
            assert_eq!(cfg.dram.channels, 8 * ranks, "ranks={ranks}");
            cfg.validate()
                .unwrap_or_else(|e| panic!("ranks={ranks}: {e}"));
        }
    }

    #[test]
    fn lp5x_enables_the_fidelity_window_constraints() {
        // The whole point of the second backend as a stress test: the
        // rolling tFAW window and tWTR turnaround must be live, not the
        // 0-disabled HBM defaults.
        let cfg = system_config(DramBackendKind::Lp5x { ranks: 4 });
        assert!(cfg.timing.t_faw > 0);
        assert!(cfg.timing.t_wtr > 0);
        let hbm = system_config(DramBackendKind::Hbm);
        assert_eq!(hbm.timing.t_faw, 0);
        assert_eq!(hbm.timing.t_wtr, 0);
    }

    #[test]
    fn registered_names_are_unambiguous() {
        let mut seen: Vec<String> = Vec::new();
        for d in descriptors() {
            for name in std::iter::once(&d.name).chain(d.aliases) {
                let lower = name.to_ascii_lowercase();
                assert!(!seen.contains(&lower), "duplicate spelling '{name}'");
                seen.push(lower);
            }
        }
    }
}
