//! PIM kernel model with the block structure of Figure 3.
//!
//! A PIM kernel maps each warp to one memory channel (the paper's
//! simplified Table I address mapping exists exactly to allow this) and
//! issues fine-grained PIM operations as cache-streaming stores, in strict
//! program order per warp (Orderlight barriers prevent reordering in the
//! SM, and the FIFO interconnect path plus the FCFS PIM queue preserve
//! order to the FU).
//!
//! Work is organized in *blocks*: runs of operations to the same row,
//! separated by a precharge + activate. Blocks follow a repeating phase
//! pattern (e.g. `load a / add b / store c` for vector addition), each
//! phase reading or writing a different row.

use std::collections::HashMap;

use pimsim_types::{Cycle, PhysAddr, PimCommand, PimOpKind, RequestId, RequestKind};

use crate::kernel::{IssuedRequest, KernelModel};

/// One phase of a PIM kernel's repeating block pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PimPhase {
    /// Load a row into the register file.
    Load,
    /// Combine a row with the register file (SIMD compute).
    Compute,
    /// Store the register file into a row.
    Store,
}

impl PimPhase {
    fn op(self) -> PimOpKind {
        match self {
            PimPhase::Load => PimOpKind::RfLoad,
            PimPhase::Compute => PimOpKind::RfCompute,
            PimPhase::Store => PimOpKind::RfStore,
        }
    }
}

/// Static description of a PIM kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct PimKernelSpec {
    /// Kernel name (e.g. `"Stream Add"`).
    pub name: String,
    /// Repeating block phase pattern. Must begin with [`PimPhase::Load`]
    /// so the register file is initialized before computes/stores.
    pub pattern: Vec<PimPhase>,
    /// Operations per block (a multiple of the per-bank RF size in real
    /// kernels; capped by the row size).
    pub ops_per_block: u32,
    /// Blocks issued per channel per run (total work, scaled).
    pub blocks_per_channel: u64,
    /// Number of memory channels (= number of warps).
    pub channels: usize,
    /// Register-file entries per bank (rf indices cycle through these).
    pub rf_entries_per_bank: u8,
    /// Rows available per bank (rows wrap modulo this).
    pub max_row: u32,
}

impl PimKernelSpec {
    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty or does not start with `Load`, or if
    /// any structural parameter is zero.
    pub fn validate(&self) {
        assert!(
            self.pattern.first() == Some(&PimPhase::Load),
            "{}: pattern must start with a Load",
            self.name
        );
        assert!(self.ops_per_block > 0, "{}: empty blocks", self.name);
        assert!(self.blocks_per_channel > 0, "{}: no work", self.name);
        assert!(self.channels > 0, "{}: no channels", self.name);
        assert!(self.rf_entries_per_bank > 0, "{}: no RF", self.name);
        assert!(
            self.max_row > self.pattern.len() as u32,
            "{}: too few rows",
            self.name
        );
    }

    /// Total PIM operations across all channels per run.
    pub fn total_ops(&self) -> u64 {
        self.blocks_per_channel * u64::from(self.ops_per_block) * self.channels as u64
    }
}

/// Per-warp issue state.
#[derive(Debug, Clone)]
struct Warp {
    channel: u16,
    next_block: u64,
    next_op: u32,
    outstanding: u32,
    done_issuing: bool,
    /// Block-ID offset accumulated across kernel re-launches, so block IDs
    /// stay globally monotonic per channel (the FU ordering invariant).
    block_base: u64,
}

/// A PIM kernel occupying `num_slots` SMs, one warp per channel.
///
/// # Example
///
/// ```
/// use pimsim_gpu::{KernelModel, PimKernelModel, PimKernelSpec, PimPhase};
///
/// let spec = PimKernelSpec {
///     name: "Stream Add".into(),
///     pattern: vec![PimPhase::Load, PimPhase::Compute, PimPhase::Store],
///     ops_per_block: 8,
///     blocks_per_channel: 6,
///     channels: 32,
///     rf_entries_per_bank: 8,
///     max_row: 1 << 13,
/// };
/// let k = PimKernelModel::new(spec, 8, 4, 32);
/// assert_eq!(k.total_requests(), 6 * 8 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct PimKernelModel {
    spec: PimKernelSpec,
    warps_per_slot: usize,
    max_outstanding: u32,
    warps: Vec<Warp>,
    /// Round-robin pointer per slot over its warps.
    rr: Vec<usize>,
    /// RequestId -> warp index, for completion routing.
    inflight: HashMap<u64, usize>,
    issued: u64,
    completed: u64,
    /// Warps currently at their outstanding-store cap. Maintained
    /// incrementally so [`KernelModel::wants_completions`] is O(1): a
    /// warp enters on the issue that fills its last credit and leaves on
    /// the ack that frees one.
    warps_at_cap: usize,
}

impl PimKernelModel {
    /// Creates the kernel on `num_slots` SMs with `warps_per_slot` warps
    /// each and a per-warp outstanding-store cap of `max_outstanding`.
    ///
    /// # Panics
    ///
    /// Panics if the warp count does not equal the channel count (the
    /// paper's mapping needs exactly one warp per channel to keep PIM
    /// blocks ordered), or if the spec fails validation.
    pub fn new(
        spec: PimKernelSpec,
        num_slots: usize,
        warps_per_slot: usize,
        max_outstanding: u32,
    ) -> Self {
        spec.validate();
        let total_warps = num_slots * warps_per_slot;
        assert_eq!(
            total_warps, spec.channels,
            "PIM mapping requires one warp per channel ({} warps vs {} channels)",
            total_warps, spec.channels
        );
        assert!(max_outstanding > 0, "outstanding cap must be nonzero");
        let warps = (0..total_warps)
            .map(|w| Warp {
                channel: w as u16,
                next_block: 0,
                next_op: 0,
                outstanding: 0,
                done_issuing: false,
                block_base: 0,
            })
            .collect();
        PimKernelModel {
            spec,
            warps_per_slot,
            max_outstanding,
            warps,
            rr: vec![0; num_slots],
            inflight: HashMap::new(),
            issued: 0,
            completed: 0,
            warps_at_cap: 0,
        }
    }

    /// The kernel's spec.
    pub fn spec(&self) -> &PimKernelSpec {
        &self.spec
    }

    fn make_command(&self, warp: &Warp) -> PimCommand {
        let spec = &self.spec;
        let pattern_len = spec.pattern.len() as u64;
        let phase_idx = (warp.next_block % pattern_len) as usize;
        let phase = spec.pattern[phase_idx];
        // Each block gets its own row; consecutive blocks (different
        // phases of a chunk, or the next chunk) map to different rows,
        // wrapping within the bank.
        let row = (warp.next_block % u64::from(spec.max_row)) as u32;
        PimCommand {
            op: phase.op(),
            channel: warp.channel,
            row,
            col: (warp.next_op % 64) as u16,
            rf_entry: (warp.next_op % u32::from(spec.rf_entries_per_bank)) as u8,
            block_start: warp.next_op == 0,
            block_id: warp.block_base + warp.next_block,
        }
    }
}

impl KernelModel for PimKernelModel {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn num_slots(&self) -> usize {
        self.rr.len()
    }

    fn try_issue(&mut self, slot: usize, _now: Cycle, id: RequestId) -> Option<IssuedRequest> {
        let base = slot * self.warps_per_slot;
        for i in 0..self.warps_per_slot {
            let wi = base + (self.rr[slot] + i) % self.warps_per_slot;
            let ready = {
                let w = &self.warps[wi];
                !w.done_issuing && w.outstanding < self.max_outstanding
            };
            if !ready {
                continue;
            }
            let cmd = self.make_command(&self.warps[wi]);
            let w = &mut self.warps[wi];
            w.outstanding += 1;
            if w.outstanding == self.max_outstanding {
                self.warps_at_cap += 1;
            }
            w.next_op += 1;
            if u64::from(w.next_op) >= u64::from(self.spec.ops_per_block) {
                w.next_op = 0;
                w.next_block += 1;
                if w.next_block >= self.spec.blocks_per_channel {
                    w.done_issuing = true;
                }
            }
            self.rr[slot] = (self.rr[slot] + i + 1) % self.warps_per_slot;
            self.inflight.insert(id.0, wi);
            self.issued += 1;
            // Synthesized address: unique per op, never used for routing
            // (the PIM command carries the channel/row/col target).
            let addr = (u64::from(cmd.channel) << 48) | (cmd.block_id << 16) | u64::from(cmd.col);
            return Some(IssuedRequest {
                kind: RequestKind::Pim(cmd),
                addr: PhysAddr(addr),
            });
        }
        None
    }

    fn on_complete(&mut self, _slot: usize, id: RequestId, _now: Cycle) {
        let wi = self
            .inflight
            .remove(&id.0)
            .unwrap_or_else(|| panic!("completion for unknown PIM request {id}"));
        let w = &mut self.warps[wi];
        debug_assert!(w.outstanding > 0);
        if w.outstanding == self.max_outstanding {
            debug_assert!(self.warps_at_cap > 0);
            self.warps_at_cap -= 1;
        }
        w.outstanding -= 1;
        self.completed += 1;
    }

    fn is_done(&self) -> bool {
        self.issued == self.total_requests() && self.completed == self.issued
    }

    fn total_requests(&self) -> u64 {
        self.spec.total_ops()
    }

    fn reset(&mut self) {
        for w in &mut self.warps {
            w.block_base += self.spec.blocks_per_channel;
            w.next_block = 0;
            w.next_op = 0;
            w.outstanding = 0;
            w.done_issuing = false;
        }
        self.inflight.clear();
        self.issued = 0;
        self.completed = 0;
        self.warps_at_cap = 0;
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        // PIM warps are throttled by store-buffer credits, not by time: a
        // warp with work left may become issuable the moment an ack
        // arrives, so the only safe answers are "now" and "never".
        self.warps.iter().any(|w| !w.done_issuing).then_some(now)
    }

    fn wants_completions(&self, _now: Cycle) -> bool {
        // Throttle wake: a warp at its credit cap would issue the moment
        // an ack lands. Completion tail: with everything issued, `is_done`
        // advances only through acks. Otherwise acks only decrement
        // below-cap outstanding counters — invisible to `try_issue` — so
        // delivery can be deferred.
        self.warps_at_cap > 0 || self.issued == self.total_requests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PimKernelSpec {
        PimKernelSpec {
            name: "test-add".into(),
            pattern: vec![PimPhase::Load, PimPhase::Compute, PimPhase::Store],
            ops_per_block: 4,
            blocks_per_channel: 6,
            channels: 8,
            rf_entries_per_bank: 4,
            max_row: 64,
        }
    }

    fn model() -> PimKernelModel {
        PimKernelModel::new(spec(), 2, 4, 16)
    }

    #[test]
    fn ops_follow_block_structure_in_order() {
        let mut k = model();
        let mut id = 0u64;
        let mut ops: Vec<PimCommand> = Vec::new();
        // Drain warp 0 (slot 0) only: issue until it would switch warps.
        for now in 0..200 {
            if let Some(r) = k.try_issue(0, now, RequestId(id)) {
                let cmd = *r.kind.pim().unwrap();
                if cmd.channel == 0 {
                    ops.push(cmd);
                }
                k.on_complete(0, RequestId(id), now);
                id += 1;
            }
        }
        let ch0: Vec<&PimCommand> = ops.iter().collect();
        assert_eq!(ch0.len(), 6 * 4, "all channel-0 ops issued");
        // Blocks in order, ops within block in order, block_start correct.
        for (i, c) in ch0.iter().enumerate() {
            let block = (i / 4) as u64;
            let op = (i % 4) as u32;
            assert_eq!(c.block_id, block);
            assert_eq!(c.block_start, op == 0);
        }
        // Phase pattern repeats Load, Compute, Store.
        assert_eq!(ch0[0].op, PimOpKind::RfLoad);
        assert_eq!(ch0[4].op, PimOpKind::RfCompute);
        assert_eq!(ch0[8].op, PimOpKind::RfStore);
        assert_eq!(ch0[12].op, PimOpKind::RfLoad);
    }

    #[test]
    fn outstanding_cap_throttles_issue() {
        let mut k = PimKernelModel::new(spec(), 2, 4, 2);
        // Never complete anything: each of the 4 warps in slot 0 can have
        // at most 2 outstanding -> 8 issues, then stall.
        let mut n = 0u64;
        for now in 0..100 {
            if k.try_issue(0, now, RequestId(n)).is_some() {
                n += 1;
            }
        }
        assert_eq!(n, 8, "4 warps x cap 2");
    }

    #[test]
    fn warps_map_one_to_one_onto_channels() {
        let mut k = model();
        let mut seen = std::collections::HashSet::new();
        for id in 0..8u64 {
            let slot = (id % 2) as usize;
            if let Some(r) = k.try_issue(slot, id, RequestId(id)) {
                seen.insert(r.kind.pim().unwrap().channel);
            }
        }
        assert!(seen.len() >= 4, "round-robin must cover multiple channels");
    }

    #[test]
    fn consecutive_blocks_use_different_rows() {
        let mut k = PimKernelModel::new(
            PimKernelSpec {
                channels: 1,
                ..spec()
            },
            1,
            1,
            64,
        );
        let mut rows = Vec::new();
        for id in 0..24u64 {
            let r = k.try_issue(0, id, RequestId(id)).unwrap();
            let c = *r.kind.pim().unwrap();
            if c.block_start {
                rows.push(c.row);
            }
            k.on_complete(0, RequestId(id), id);
        }
        for w in rows.windows(2) {
            assert_ne!(w[0], w[1], "adjacent blocks must map to different rows");
        }
    }

    #[test]
    fn completes_exactly_total_ops() {
        let mut k = model();
        let mut id = 0u64;
        for now in 0..10_000 {
            for slot in 0..2 {
                if let Some(_r) = k.try_issue(slot, now, RequestId(id)) {
                    k.on_complete(slot, RequestId(id), now);
                    id += 1;
                }
            }
            if k.is_done() {
                break;
            }
        }
        assert!(k.is_done());
        assert_eq!(id, k.total_requests());
    }

    #[test]
    fn reset_restores_full_work() {
        let mut k = model();
        for id in 0..10u64 {
            if k.try_issue(0, id, RequestId(id)).is_some() {
                k.on_complete(0, RequestId(id), id);
            }
        }
        k.reset();
        assert_eq!(k.issued, 0);
        assert!(!k.is_done());
        assert!(k.try_issue(0, 0, RequestId(99)).is_some());
    }

    #[test]
    #[should_panic(expected = "one warp per channel")]
    fn warp_channel_mismatch_rejected() {
        let _ = PimKernelModel::new(spec(), 1, 4, 8); // 4 warps, 8 channels
    }

    #[test]
    #[should_panic(expected = "must start with a Load")]
    fn pattern_without_load_rejected() {
        let mut s = spec();
        s.pattern = vec![PimPhase::Store];
        s.validate();
    }

    #[test]
    #[should_panic(expected = "completion for unknown")]
    fn unknown_completion_panics() {
        let mut k = model();
        k.on_complete(0, RequestId(12345), 0);
    }

    #[test]
    fn wants_completions_tracks_cap_and_tail() {
        // Cap 2 per warp: filling a warp's credits must flip the wake on,
        // and freeing one must flip it back off.
        let mut k = PimKernelModel::new(spec(), 2, 4, 2);
        assert!(!k.wants_completions(0), "fresh kernel has slack");
        let mut ids = Vec::new();
        for n in 0..8u64 {
            assert!(k.try_issue(0, n, RequestId(n)).is_some());
            ids.push(RequestId(n));
        }
        assert!(
            k.wants_completions(8),
            "all slot-0 warps at cap must request delivery"
        );
        k.on_complete(0, ids[0], 9);
        // One warp regained a credit, but three are still capped.
        assert!(k.wants_completions(9));
        for id in &ids[1..] {
            k.on_complete(0, *id, 10);
        }
        assert!(!k.wants_completions(10), "credits restored, slack again");
    }

    #[test]
    fn wants_completions_in_tail_until_reset() {
        // Issue everything (cap high enough to never throttle): the tail
        // must demand per-cycle delivery so `is_done` flips on schedule.
        let mut k = PimKernelModel::new(spec(), 2, 4, 64);
        let total = k.total_requests();
        let mut id = 0u64;
        while id < total {
            for slot in 0..2 {
                if k.try_issue(slot, id, RequestId(id)).is_some() {
                    id += 1;
                }
            }
        }
        assert!(k.wants_completions(0), "fully issued kernel is in tail");
        for n in 0..total {
            k.on_complete(0, RequestId(n), n);
        }
        assert!(k.is_done());
        k.reset();
        assert!(!k.wants_completions(0), "reset restores deferral slack");
    }
}
