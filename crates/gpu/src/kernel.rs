//! The kernel-model abstraction shared by MEM and PIM kernels.

use pimsim_types::{Cycle, PhysAddr, RequestId, RequestKind};

/// A request produced by a kernel model, before the simulator wraps it in
/// a [`pimsim_types::Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedRequest {
    /// What to do.
    pub kind: RequestKind,
    /// Physical address (for PIM requests, a synthesized address; the real
    /// target is inside the embedded command).
    pub addr: PhysAddr,
}

/// A kernel's memory-request stream, split across the SMs it occupies.
///
/// The simulator drives each SM slot independently:
///
/// 1. every GPU cycle, for each slot with injection capacity, it calls
///    [`KernelModel::try_issue`] with the [`RequestId`] the request will
///    carry;
/// 2. when the memory system acknowledges a request, it calls
///    [`KernelModel::on_complete`] with that ID;
/// 3. the kernel is finished when [`KernelModel::is_done`] — all work
///    issued *and* acknowledged.
///
/// Flow control: regular kernels are throttled by the simulator's per-SM
/// outstanding cap; PIM kernels self-throttle per warp (store-buffer
/// capacity) and by Orderlight ordering.
pub trait KernelModel: Send {
    /// Kernel name for reporting (e.g. `"bfs"`, `"Stream Add"`).
    fn name(&self) -> &str;

    /// Number of SM slots this kernel occupies.
    fn num_slots(&self) -> usize;

    /// Produce the next request from `slot`, or `None` if the slot is
    /// pacing (compute phase), throttled, or out of work.
    fn try_issue(&mut self, slot: usize, now: Cycle, id: RequestId) -> Option<IssuedRequest>;

    /// A request issued from `slot` was acknowledged by the memory system.
    fn on_complete(&mut self, slot: usize, id: RequestId, now: Cycle);

    /// All work issued and acknowledged.
    fn is_done(&self) -> bool;

    /// Total requests this kernel will issue per run.
    fn total_requests(&self) -> u64;

    /// Restart the kernel for a fresh run (kernels run in a loop in the
    /// paper's methodology; the re-run re-seeds deterministically).
    fn reset(&mut self);
}
