//! The kernel-model abstraction shared by MEM and PIM kernels.

use pimsim_types::{Cycle, PhysAddr, RequestId, RequestKind};

/// A request produced by a kernel model, before the simulator wraps it in
/// a [`pimsim_types::Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedRequest {
    /// What to do.
    pub kind: RequestKind,
    /// Physical address (for PIM requests, a synthesized address; the real
    /// target is inside the embedded command).
    pub addr: PhysAddr,
}

/// A kernel's memory-request stream, split across the SMs it occupies.
///
/// The simulator drives each SM slot independently:
///
/// 1. every GPU cycle, for each slot with injection capacity, it calls
///    [`KernelModel::try_issue`] with the [`RequestId`] the request will
///    carry;
/// 2. when the memory system acknowledges a request, it calls
///    [`KernelModel::on_complete`] with that ID;
/// 3. the kernel is finished when [`KernelModel::is_done`] — all work
///    issued *and* acknowledged.
///
/// Flow control: regular kernels are throttled by the simulator's per-SM
/// outstanding cap; PIM kernels self-throttle per warp (store-buffer
/// capacity) and by Orderlight ordering.
pub trait KernelModel: Send {
    /// Kernel name for reporting (e.g. `"bfs"`, `"Stream Add"`).
    fn name(&self) -> &str;

    /// Number of SM slots this kernel occupies.
    fn num_slots(&self) -> usize;

    /// Produce the next request from `slot`, or `None` if the slot is
    /// pacing (compute phase), throttled, or out of work.
    fn try_issue(&mut self, slot: usize, now: Cycle, id: RequestId) -> Option<IssuedRequest>;

    /// A request issued from `slot` was acknowledged by the memory system.
    fn on_complete(&mut self, slot: usize, id: RequestId, now: Cycle);

    /// All work issued and acknowledged.
    fn is_done(&self) -> bool;

    /// Total requests this kernel will issue per run.
    fn total_requests(&self) -> u64;

    /// Restart the kernel for a fresh run (kernels run in a loop in the
    /// paper's methodology; the re-run re-seeds deterministically).
    fn reset(&mut self);

    /// The earliest GPU cycle at or after `now` at which any slot of this
    /// kernel *could* produce a request, or `None` if the kernel will
    /// never issue again this run (all work already issued).
    ///
    /// This is the activity hook the event-driven simulator uses to jump
    /// over provably idle spans: when every network queue and every
    /// partition is empty, the only possible source of future work is
    /// kernel issue pacing, so the simulator may advance its clocks
    /// directly to the minimum of these hooks across kernels.
    ///
    /// Contract: the returned cycle must be a *lower bound* — `try_issue`
    /// must return `None` for every slot at every cycle in
    /// `now..returned`. Returning `Some(now)` is always sound (it simply
    /// disables skipping); returning a cycle later than the true next
    /// issue is **unsound** and will desynchronize the fast-forward and
    /// lock-step schedules. The default is the conservative `Some(now)`.
    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Whether withholding completion delivery past the end of this cycle
    /// could change the kernel's observable behavior.
    ///
    /// The event-driven completion path accumulates acknowledgements in
    /// the partitions' ack wires and only retires them when some consumer
    /// can tell the difference. A kernel must answer `true` while either
    /// holds:
    ///
    /// * **throttle wake** — some slot's issue decision depends on its
    ///   outstanding count (a warp at its credit cap would issue once an
    ///   ack lands), or
    /// * **completion tail** — all work has been issued, so `is_done`
    ///   (polled every cycle) now advances only through completions.
    ///
    /// While `false`, [`KernelModel::on_complete`] must be insensitive to
    /// batching and to its `now` argument: applying the pending acks later
    /// (but before the next issue decision that could observe them) must
    /// produce the same state as applying them each cycle. The default
    /// `true` keeps unknown models on the per-cycle delivery schedule,
    /// which is always sound.
    fn wants_completions(&self, now: Cycle) -> bool {
        let _ = now;
        true
    }
}
