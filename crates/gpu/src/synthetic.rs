//! Synthetic regular-GPU (MEM) kernel model.
//!
//! Each kernel is a parameterized request generator calibrated to the
//! memory-behaviour axes of the paper's Figure 4 characterization:
//! interconnect arrival rate (issue pacing), DRAM arrival rate (L2 reuse),
//! bank-level parallelism (concurrent streams), and row-buffer hit rate
//! (sequential run length).

use std::collections::VecDeque;

use pimsim_types::rng::SplitMix64;
use pimsim_types::{Cycle, PhysAddr, RequestId, RequestKind};

use crate::kernel::{IssuedRequest, KernelModel};

/// Word size all generated addresses are aligned to (the 32 B DRAM atom).
const WORD: u64 = 32;

/// Tuning knobs for a [`SyntheticGpuKernel`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpuKernelParams {
    /// Kernel name (e.g. `"bfs"`).
    pub name: String,
    /// Total memory requests per run, across all SM slots.
    pub total_requests: u64,
    /// GPU cycles between issues per SM — the compute-intensity knob.
    /// 1 saturates the SM's memory path; tens of cycles models a
    /// compute-bound kernel.
    pub issue_interval: u64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Working-set size in bytes (partitioned across slots).
    pub footprint_bytes: u64,
    /// Probability that a stream's next access continues sequentially
    /// (+32 B). Long runs raise the row-buffer hit rate.
    pub row_locality: f64,
    /// Probability of re-touching a recently used line — raises the L2 hit
    /// rate, filtering DRAM traffic.
    pub l2_reuse: f64,
    /// Concurrent address streams per SM — the bank-level-parallelism
    /// knob.
    pub streams_per_slot: usize,
    /// RNG seed (per-slot streams derive from it deterministically).
    pub seed: u64,
}

impl GpuKernelParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]` or any structural
    /// parameter is zero.
    pub fn validate(&self) {
        assert!(self.total_requests > 0, "{}: zero requests", self.name);
        assert!(
            self.issue_interval > 0,
            "{}: zero issue interval",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction)
                && (0.0..=1.0).contains(&self.row_locality)
                && (0.0..=1.0).contains(&self.l2_reuse),
            "{}: probabilities must be in [0,1]",
            self.name
        );
        assert!(
            self.footprint_bytes >= WORD,
            "{}: footprint too small",
            self.name
        );
        assert!(self.streams_per_slot > 0, "{}: zero streams", self.name);
    }
}

/// Per-SM generator state.
#[derive(Debug, Clone)]
struct Slot {
    rng: SplitMix64,
    streams: Vec<u64>,
    next_stream: usize,
    history: VecDeque<u64>,
    next_ready: Cycle,
    base: u64,
    span: u64,
    remaining: u64,
}

/// A regular GPU kernel modeled as a calibrated request generator.
///
/// # Example
///
/// ```
/// use pimsim_gpu::{GpuKernelParams, KernelModel, SyntheticGpuKernel};
/// use pimsim_types::RequestId;
///
/// let params = GpuKernelParams {
///     name: "stream-like".into(),
///     total_requests: 100,
///     issue_interval: 1,
///     read_fraction: 0.7,
///     footprint_bytes: 1 << 20,
///     row_locality: 0.9,
///     l2_reuse: 0.2,
///     streams_per_slot: 4,
///     seed: 42,
/// };
/// let mut k = SyntheticGpuKernel::new(params, 8);
/// let r = k.try_issue(0, 0, RequestId(0));
/// assert!(r.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticGpuKernel {
    params: GpuKernelParams,
    slots: Vec<Slot>,
    issued: u64,
    completed: u64,
    /// Run number; folded into the per-slot RNG seeds so each re-launch of
    /// the kernel (the co-execution loop) streams fresh addresses instead
    /// of re-touching the L2-resident footprint of the previous run.
    epoch: u64,
}

impl SyntheticGpuKernel {
    /// Creates the kernel occupying `num_slots` SMs.
    ///
    /// # Panics
    ///
    /// Panics if `num_slots` is zero or the parameters fail validation.
    pub fn new(params: GpuKernelParams, num_slots: usize) -> Self {
        params.validate();
        assert!(num_slots > 0, "kernel needs at least one SM");
        let mut k = SyntheticGpuKernel {
            params,
            slots: Vec::new(),
            issued: 0,
            completed: 0,
            epoch: 0,
        };
        k.init_slots(num_slots);
        k
    }

    fn init_slots(&mut self, num_slots: usize) {
        let epoch = self.epoch;
        let p = &self.params;
        // Per-slot address partition, rounded to whole DRAM words so all
        // generated addresses stay word-aligned.
        let span = ((p.footprint_bytes / num_slots as u64) / WORD).max(4) * WORD;
        let per_slot = p.total_requests / num_slots as u64;
        let extra = p.total_requests % num_slots as u64;
        self.slots = (0..num_slots)
            .map(|s| {
                let mut rng = SplitMix64::new(
                    p.seed
                        .wrapping_add(s as u64 * 0x9e37_79b9)
                        .wrapping_add(epoch.wrapping_mul(0x517c_c1b7_2722_0a95)),
                );
                let base = s as u64 * span;
                let streams = (0..p.streams_per_slot)
                    .map(|_| base + rng.next_range(span / WORD) * WORD)
                    .collect();
                // Stagger the slots' first issues so the SMs do not inject
                // in lock-step bursts (real warps desynchronize quickly).
                let first_ready = rng.next_range(p.issue_interval.max(1));
                Slot {
                    rng,
                    streams,
                    next_stream: 0,
                    history: VecDeque::with_capacity(64),
                    next_ready: first_ready,
                    base,
                    span,
                    remaining: per_slot + u64::from((s as u64) < extra),
                }
            })
            .collect();
    }

    /// The kernel's parameters.
    pub fn params(&self) -> &GpuKernelParams {
        &self.params
    }

    /// Requests issued so far this run.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl KernelModel for SyntheticGpuKernel {
    fn name(&self) -> &str {
        &self.params.name
    }

    fn num_slots(&self) -> usize {
        self.slots.len()
    }

    fn try_issue(&mut self, slot: usize, now: Cycle, _id: RequestId) -> Option<IssuedRequest> {
        let p_row = self.params.row_locality;
        let p_l2 = self.params.l2_reuse;
        let p_read = self.params.read_fraction;
        let interval = self.params.issue_interval;
        let s = &mut self.slots[slot];
        if s.remaining == 0 || now < s.next_ready {
            return None;
        }
        let addr = if p_l2 > 0.0 && !s.history.is_empty() && s.rng.chance(p_l2) {
            let i = s.rng.next_range(s.history.len() as u64) as usize;
            s.history[i]
        } else {
            let idx = s.next_stream;
            s.next_stream = (s.next_stream + 1) % s.streams.len();
            let cur = s.streams[idx];
            let next = if s.rng.chance(p_row) {
                let stepped = cur + WORD;
                if stepped >= s.base + s.span {
                    s.base
                } else {
                    stepped
                }
            } else {
                s.base + s.rng.next_range(s.span / WORD) * WORD
            };
            s.streams[idx] = next;
            next
        };
        if s.history.len() == 64 {
            s.history.pop_front();
        }
        s.history.push_back(addr);
        let kind = if s.rng.chance(p_read) {
            RequestKind::MemRead
        } else {
            RequestKind::MemWrite
        };
        s.remaining -= 1;
        // Small deterministic jitter keeps the request stream from
        // re-synchronizing across SMs.
        let jitter = if interval >= 4 {
            s.rng.next_range(interval / 4)
        } else {
            0
        };
        s.next_ready = now + interval + jitter;
        self.issued += 1;
        Some(IssuedRequest {
            kind,
            addr: PhysAddr(addr),
        })
    }

    fn on_complete(&mut self, _slot: usize, _id: RequestId, _now: Cycle) {
        self.completed += 1;
        debug_assert!(
            self.completed <= self.issued,
            "more completions than issues"
        );
    }

    fn is_done(&self) -> bool {
        self.issued == self.params.total_requests && self.completed == self.issued
    }

    fn total_requests(&self) -> u64 {
        self.params.total_requests
    }

    fn reset(&mut self) {
        let n = self.slots.len();
        self.issued = 0;
        self.completed = 0;
        self.epoch += 1;
        self.init_slots(n);
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        // A slot with work left issues no earlier than its pacing stamp;
        // slots that issued everything are silent until reset.
        self.slots
            .iter()
            .filter(|s| s.remaining > 0)
            .map(|s| s.next_ready.max(now))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GpuKernelParams {
        GpuKernelParams {
            name: "test".into(),
            total_requests: 64,
            issue_interval: 2,
            read_fraction: 1.0,
            footprint_bytes: 1 << 16,
            row_locality: 1.0,
            l2_reuse: 0.0,
            streams_per_slot: 1,
            seed: 7,
        }
    }

    #[test]
    fn issues_exactly_total_requests() {
        let mut k = SyntheticGpuKernel::new(params(), 4);
        let mut n = 0u64;
        for now in 0..10_000 {
            for slot in 0..4 {
                if let Some(_r) = k.try_issue(slot, now, RequestId(n)) {
                    k.on_complete(slot, RequestId(n), now);
                    n += 1;
                }
            }
            if k.is_done() {
                break;
            }
        }
        assert_eq!(n, 64);
        assert!(k.is_done());
    }

    #[test]
    fn pacing_respects_issue_interval() {
        let mut k = SyntheticGpuKernel::new(params(), 1);
        assert!(k.try_issue(0, 0, RequestId(0)).is_some());
        assert!(k.try_issue(0, 1, RequestId(1)).is_none(), "interval 2");
        assert!(k.try_issue(0, 2, RequestId(1)).is_some());
    }

    #[test]
    fn sequential_locality_walks_words() {
        let mut k = SyntheticGpuKernel::new(params(), 1);
        let a0 = k.try_issue(0, 0, RequestId(0)).unwrap().addr.0;
        let a1 = k.try_issue(0, 2, RequestId(1)).unwrap().addr.0;
        assert_eq!(a1, a0 + WORD, "row_locality=1.0 must walk sequentially");
    }

    #[test]
    fn random_mode_stays_in_slot_partition() {
        let mut p = params();
        p.row_locality = 0.0;
        p.total_requests = 200;
        let mut k = SyntheticGpuKernel::new(p, 2);
        let span = (1u64 << 16) / 2;
        let mut issued = 0u64;
        for now in 0..1000 {
            if let Some(r) = k.try_issue(1, now, RequestId(issued)) {
                let a = r.addr.0;
                assert!(
                    a >= span && a < 2 * span,
                    "slot 1 escaped partition: {a:#x}"
                );
                issued += 1;
                if issued == 100 {
                    return;
                }
            }
        }
        panic!("only {issued}/100 requests issued");
    }

    #[test]
    fn reset_streams_fresh_addresses_deterministically() {
        // A re-launched kernel must not replay the previous run's address
        // stream (it would hit entirely in the warm L2), but two identical
        // kernels must still agree run-for-run (determinism).
        let issue_20 = |k: &mut SyntheticGpuKernel| -> Vec<u64> {
            let mut v = Vec::new();
            for i in 0..20 {
                if let Some(r) = k.try_issue(0, i * 2, RequestId(i)) {
                    v.push(r.addr.0);
                }
            }
            v
        };
        let mut a = SyntheticGpuKernel::new(params(), 2);
        let mut b = SyntheticGpuKernel::new(params(), 2);
        let run1 = issue_20(&mut a);
        assert_eq!(run1, issue_20(&mut b), "identical kernels agree");
        a.reset();
        b.reset();
        let run2 = issue_20(&mut a);
        assert_ne!(run1, run2, "a re-launch must touch fresh addresses");
        assert_eq!(run2, issue_20(&mut b), "re-launches agree across kernels");
    }

    #[test]
    fn write_fraction_produces_writes() {
        let mut p = params();
        p.read_fraction = 0.0;
        let mut k = SyntheticGpuKernel::new(p, 1);
        let r = k.try_issue(0, 0, RequestId(0)).unwrap();
        assert_eq!(r.kind, RequestKind::MemWrite);
    }

    #[test]
    #[should_panic(expected = "zero requests")]
    fn zero_requests_rejected() {
        let mut p = params();
        p.total_requests = 0;
        let _ = SyntheticGpuKernel::new(p, 1);
    }
}
