//! GPU execution model: SMs as calibrated memory-request generators.
//!
//! The paper's analysis depends on each kernel's *memory behaviour* —
//! interconnect/DRAM arrival rates, bank-level parallelism, row-buffer
//! locality, L2 reuse — not on its arithmetic. This crate models kernels
//! as parameterized request generators (see `DESIGN.md` for the
//! substitution rationale):
//!
//! * [`SyntheticGpuKernel`] — a regular (MEM) kernel: per-SM paced issue,
//!   multiple address streams for bank-level parallelism, tunable row
//!   locality and L2 reuse.
//! * [`PimKernelModel`] — a PIM kernel with the exact block structure of
//!   Figure 3: per-channel warps issue `load*/compute*/store*` blocks in
//!   strict (Orderlight) order as cache-streaming stores.
//! * [`TraceRecorder`] / [`TraceKernel`] — capture any kernel's memory
//!   trace and replay it deterministically (trace-driven simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod pim_kernel;
pub mod synthetic;
pub mod trace;

pub use kernel::{IssuedRequest, KernelModel};
pub use pim_kernel::{PimKernelModel, PimKernelSpec, PimPhase};
pub use synthetic::{GpuKernelParams, SyntheticGpuKernel};
pub use trace::{read_trace, write_trace, TraceKernel, TraceRecord, TraceRecorder};
