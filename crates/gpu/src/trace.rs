//! Memory-trace capture and replay.
//!
//! Real GPU simulators consume instruction or memory traces; this module
//! provides the memory-trace half for ours:
//!
//! * [`TraceRecorder`] wraps any [`KernelModel`] and records every request
//!   it issues (slot, issue cycle, kind, address);
//! * [`TraceKernel`] replays a recorded trace as a kernel model, pacing
//!   each request no earlier than its recorded cycle;
//! * traces serialize to a simple line-oriented text format
//!   (`slot cycle r|w|p addr`), stable for external tooling.
//!
//! Replaying a MEM trace through the simulator is deterministic and
//! reproduces the recorded kernel's traffic exactly, so third-party
//! traces (e.g. converted from real profilers) can stand in for the
//! synthetic models.

use std::collections::VecDeque;
use std::io::{BufRead, Write};

use pimsim_types::{Cycle, PhysAddr, RequestId, RequestKind};

use crate::kernel::{IssuedRequest, KernelModel};

/// One recorded memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// SM slot that issued the request.
    pub slot: u32,
    /// GPU cycle at issue.
    pub cycle: Cycle,
    /// The request (kind + address).
    pub kind: RequestKind,
    /// Address (also carried for PIM records).
    pub addr: u64,
}

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// Reason.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes records to the text format (one `slot cycle kind addr` line
/// each; kind is `r`, `w`). PIM records are rejected — PIM kernels carry
/// structural commands that a flat trace cannot express.
///
/// # Errors
///
/// Returns I/O errors from the writer, or `InvalidInput` for PIM records.
pub fn write_trace<W: Write>(mut w: W, records: &[TraceRecord]) -> std::io::Result<()> {
    for r in records {
        let kind = match r.kind {
            RequestKind::MemRead => 'r',
            RequestKind::MemWrite => 'w',
            RequestKind::Pim(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "PIM requests cannot be serialized to a flat memory trace",
                ))
            }
        };
        writeln!(w, "{} {} {} {:#x}", r.slot, r.cycle, kind, r.addr)?;
    }
    Ok(())
}

/// Parses the text format produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] naming the offending line.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ParseTraceError {
            line: i + 1,
            reason: e.to_string(),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ParseTraceError {
            line: i + 1,
            reason: reason.to_owned(),
        };
        let mut parts = line.split_whitespace();
        let slot: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("missing/invalid slot"))?;
        let cycle: u64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("missing/invalid cycle"))?;
        let kind = match parts.next() {
            Some("r") => RequestKind::MemRead,
            Some("w") => RequestKind::MemWrite,
            _ => return Err(err("kind must be r or w")),
        };
        let addr_s = parts.next().ok_or_else(|| err("missing address"))?;
        let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| err("invalid hex address"))?
        } else {
            addr_s.parse().map_err(|_| err("invalid address"))?
        };
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        out.push(TraceRecord {
            slot,
            cycle,
            kind,
            addr,
        });
    }
    Ok(out)
}

/// Wraps a kernel model and records every issued request.
pub struct TraceRecorder {
    inner: Box<dyn KernelModel>,
    records: Vec<TraceRecord>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("inner", &self.inner.name())
            .field("records", &self.records.len())
            .finish()
    }
}

impl TraceRecorder {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn KernelModel>) -> Self {
        TraceRecorder {
            inner,
            records: Vec::new(),
        }
    }

    /// The records captured so far, in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the recorder, returning the captured trace.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl KernelModel for TraceRecorder {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_slots(&self) -> usize {
        self.inner.num_slots()
    }

    fn try_issue(&mut self, slot: usize, now: Cycle, id: RequestId) -> Option<IssuedRequest> {
        let issued = self.inner.try_issue(slot, now, id)?;
        self.records.push(TraceRecord {
            slot: slot as u32,
            cycle: now,
            kind: issued.kind,
            addr: issued.addr.0,
        });
        Some(issued)
    }

    fn on_complete(&mut self, slot: usize, id: RequestId, now: Cycle) {
        self.inner.on_complete(slot, id, now);
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn total_requests(&self) -> u64 {
        self.inner.total_requests()
    }

    fn reset(&mut self) {
        // Recording continues across runs; records from later runs append.
        self.inner.reset();
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        self.inner.next_activity_cycle(now)
    }
}

/// Replays a recorded MEM trace as a kernel model.
///
/// Each slot's records are issued in order, no earlier than their recorded
/// cycle (so a contended replay can only stretch, never compress, the
/// original timing).
#[derive(Debug, Clone)]
pub struct TraceKernel {
    name: String,
    slots: Vec<VecDeque<TraceRecord>>,
    issued: u64,
    completed: u64,
    total: u64,
    original: Vec<TraceRecord>,
}

impl TraceKernel {
    /// Builds a replay kernel over `num_slots` SM slots.
    ///
    /// # Panics
    ///
    /// Panics if a record's slot is out of range, records within a slot
    /// are not cycle-ordered, or the trace contains PIM records.
    pub fn new(name: impl Into<String>, num_slots: usize, records: Vec<TraceRecord>) -> Self {
        let mut slots: Vec<VecDeque<TraceRecord>> = vec![VecDeque::new(); num_slots];
        for r in &records {
            assert!(
                !matches!(r.kind, RequestKind::Pim(_)),
                "flat traces cannot carry PIM requests"
            );
            let s = r.slot as usize;
            assert!(s < num_slots, "record slot {s} out of range");
            if let Some(prev) = slots[s].back() {
                assert!(
                    prev.cycle <= r.cycle,
                    "slot {s} records must be cycle-ordered"
                );
            }
            slots[s].push_back(*r);
        }
        let total = records.len() as u64;
        TraceKernel {
            name: name.into(),
            slots,
            issued: 0,
            completed: 0,
            total,
            original: records,
        }
    }
}

impl KernelModel for TraceKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_slots(&self) -> usize {
        self.slots.len()
    }

    fn try_issue(&mut self, slot: usize, now: Cycle, _id: RequestId) -> Option<IssuedRequest> {
        let head = self.slots[slot].front()?;
        if head.cycle > now {
            return None;
        }
        let r = self.slots[slot].pop_front().expect("peeked");
        self.issued += 1;
        Some(IssuedRequest {
            kind: r.kind,
            addr: PhysAddr(r.addr),
        })
    }

    fn on_complete(&mut self, _slot: usize, _id: RequestId, _now: Cycle) {
        self.completed += 1;
    }

    fn is_done(&self) -> bool {
        self.issued == self.total && self.completed == self.total
    }

    fn total_requests(&self) -> u64 {
        self.total
    }

    fn reset(&mut self) {
        let records = self.original.clone();
        let n = self.slots.len();
        *self = TraceKernel::new(std::mem::take(&mut self.name), n, records);
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        // Each slot's next record fires at its recorded cycle, or
        // immediately if the replay is already running behind.
        self.slots
            .iter()
            .filter_map(|q| q.front())
            .map(|r| r.cycle.max(now))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{GpuKernelParams, SyntheticGpuKernel};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                slot: 0,
                cycle: 0,
                kind: RequestKind::MemRead,
                addr: 0x40,
            },
            TraceRecord {
                slot: 0,
                cycle: 5,
                kind: RequestKind::MemWrite,
                addr: 0x80,
            },
            TraceRecord {
                slot: 1,
                cycle: 2,
                kind: RequestKind::MemRead,
                addr: 0x1000,
            },
        ]
    }

    #[test]
    fn text_roundtrip_preserves_records() {
        let recs = sample_records();
        let mut buf = Vec::new();
        write_trace(&mut buf, &recs).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn parser_skips_comments_and_blank_lines() {
        let text = "# a comment\n\n0 3 r 0x20\n";
        let recs = read_trace(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cycle, 3);
    }

    #[test]
    fn parser_reports_line_numbers() {
        let text = "0 0 r 0x20\n0 1 x 0x40\n";
        let e = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("kind"));
    }

    #[test]
    fn replay_paces_by_recorded_cycle() {
        let mut k = TraceKernel::new("t", 2, sample_records());
        assert_eq!(k.total_requests(), 3);
        // Slot 0 at cycle 0: first record fires; second waits for cycle 5.
        assert!(k.try_issue(0, 0, RequestId(0)).is_some());
        assert!(k.try_issue(0, 2, RequestId(1)).is_none());
        assert!(k.try_issue(0, 5, RequestId(1)).is_some());
        // Slot 1 record paced to cycle 2.
        assert!(k.try_issue(1, 1, RequestId(2)).is_none());
        let r = k.try_issue(1, 2, RequestId(2)).unwrap();
        assert_eq!(r.addr.0, 0x1000);
        for _ in 0..3 {
            k.on_complete(0, RequestId(0), 10);
        }
        assert!(k.is_done());
    }

    #[test]
    fn reset_replays_from_the_start() {
        let mut k = TraceKernel::new("t", 2, sample_records());
        let a = k.try_issue(0, 0, RequestId(0)).unwrap();
        k.reset();
        let b = k.try_issue(0, 0, RequestId(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recorder_captures_exactly_what_was_issued() {
        let params = GpuKernelParams {
            name: "src".into(),
            total_requests: 40,
            issue_interval: 2,
            read_fraction: 0.5,
            footprint_bytes: 1 << 16,
            row_locality: 0.7,
            l2_reuse: 0.1,
            streams_per_slot: 2,
            seed: 3,
        };
        let mut rec = TraceRecorder::new(Box::new(SyntheticGpuKernel::new(params, 2)));
        let mut id = 0u64;
        let mut issued = Vec::new();
        for now in 0..500 {
            for slot in 0..2 {
                if let Some(r) = rec.try_issue(slot, now, RequestId(id)) {
                    issued.push((slot as u32, now, r.kind, r.addr.0));
                    rec.on_complete(slot, RequestId(id), now);
                    id += 1;
                }
            }
            if rec.is_done() {
                break;
            }
        }
        assert!(rec.is_done());
        let records = rec.into_records();
        assert_eq!(records.len(), issued.len());
        for (r, (slot, cycle, kind, addr)) in records.iter().zip(&issued) {
            assert_eq!(
                (r.slot, r.cycle, r.kind, r.addr),
                (*slot, *cycle, *kind, *addr)
            );
        }
        // And the capture replays identically.
        let mut replay = TraceKernel::new("replay", 2, records);
        let mut id2 = 0u64;
        for now in 0..500 {
            for slot in 0..2 {
                if let Some(r) = replay.try_issue(slot, now, RequestId(id2)) {
                    let (s0, c0, k0, a0) = issued[id2 as usize];
                    assert_eq!((slot as u32, now, r.kind, r.addr.0), (s0, c0, k0, a0));
                    replay.on_complete(slot, RequestId(id2), now);
                    id2 += 1;
                }
            }
            if replay.is_done() {
                break;
            }
        }
        assert!(replay.is_done());
    }

    #[test]
    #[should_panic(expected = "cycle-ordered")]
    fn out_of_order_slot_records_rejected() {
        let recs = vec![
            TraceRecord {
                slot: 0,
                cycle: 9,
                kind: RequestKind::MemRead,
                addr: 0,
            },
            TraceRecord {
                slot: 0,
                cycle: 3,
                kind: RequestKind::MemRead,
                addr: 0,
            },
        ];
        let _ = TraceKernel::new("t", 1, recs);
    }
}
