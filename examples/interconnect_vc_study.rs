//! Interconnect study (Section V): how a separate PIM virtual channel
//! restores the MEM request arrival rate at the memory controller when a
//! PIM kernel floods the network.
//!
//! ```sh
//! cargo run --release --example interconnect_vc_study
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::stats::table::{f3, Table};

fn main() {
    let scale = 0.05;
    let gpu = GpuBenchmark(19); // srad_v2: interconnect-heavy, L2-filtered
    let pim = PimBenchmark(1); // Stream Add

    // The GPU kernel's standalone MEM arrival rate on 72 SMs is the
    // normalization basis of Figure 6.
    let solo = Runner::new(SystemConfig::default(), PolicyKind::FrFcfs);
    let alone = solo
        .standalone(Box::new(gpu_kernel(gpu, 72, scale)), 8, false)
        .expect("standalone");
    let solo_rate = alone.mc.mem_arrivals as f64 * 1000.0 / alone.cycles as f64;
    println!("{gpu} standalone MEM arrival rate: {solo_rate:.2} req/kcycle\n");

    let mut t = Table::new(vec![
        "policy".into(),
        "VC".into(),
        "MEM arrivals/kcycle".into(),
        "normalized".into(),
    ]);
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        for policy in [
            PolicyKind::MemFirst,
            PolicyKind::FrFcfs,
            PolicyKind::FrRrFcfs,
            PolicyKind::f3fs_competitive(),
        ] {
            let mut system = SystemConfig::default();
            system.noc.vc_mode = vc;
            let mut runner = Runner::new(system, policy);
            runner.max_gpu_cycles = 10_000_000;
            let out = runner.coexec(
                Box::new(gpu_kernel(gpu, 72, scale)),
                Box::new(pim_kernel(pim, 32, 4, 256, scale)),
                true,
            );
            let rate = out.mem_arrival_rate();
            t.row(vec![
                policy.label().into(),
                vc.label().into(),
                f3(rate),
                f3(rate / solo_rate),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "The paper's headline: MEM-First improves most from VC2 (2.87x on average),\n\
         because under VC1 its MEM requests are stuck behind PIM flits in the\n\
         shared interconnect queues."
    );
}
