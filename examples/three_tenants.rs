//! Multi-tenancy beyond pairs: two independent GPU kernels (MIG/MPS-style
//! tenants) plus a PIM kernel sharing the memory subsystem — the
//! multi-tenant setting that motivates the paper's fairness concern in the
//! first place.
//!
//! The simulator mounts any number of kernels; metrics generalize by
//! computing each tenant's speedup against its standalone run on the same
//! SM count.
//!
//! ```sh
//! cargo run --release --example three_tenants
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::stats::table::{f3, Table};
use pim_coscheduling::workloads::{gpu_kernel, pim_kernel};

fn main() {
    let scale = 0.2;
    // Tenants: kmeans on SMs 8..44, hotspot on 44..80, STREAM-Add on 0..8.
    let tenants: [(&str, u8, usize); 2] = [("kmeans", 11, 36), ("hotspot", 8, 36)];

    // Standalone baselines on the same SM counts the tenants get.
    let solo = pim_coscheduling::sim::Runner::new(SystemConfig::default(), PolicyKind::FrFcfs);
    let mut alone = Vec::new();
    for &(_, bench, sms) in &tenants {
        alone.push(
            solo.standalone(
                Box::new(gpu_kernel(GpuBenchmark(bench), sms, scale)),
                0,
                false,
            )
            .expect("baseline")
            .cycles,
        );
    }
    let pim_alone = solo
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, scale)),
            0,
            true,
        )
        .expect("baseline")
        .cycles;

    println!("three tenants: kmeans (36 SMs) + hotspot (36 SMs) + Stream Add (8 SMs)\n");
    let mut t = Table::new(vec![
        "policy".into(),
        "kmeans speedup".into(),
        "hotspot speedup".into(),
        "PIM speedup".into(),
        "min/max fairness".into(),
    ]);
    for policy in [
        PolicyKind::FrFcfs,
        PolicyKind::FrRrFcfs,
        PolicyKind::PimFirst,
        PolicyKind::f3fs_competitive(),
    ] {
        let mut sim = Simulator::new(SystemConfig::default(), policy);
        let kp = sim.mount(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, scale)),
            (0..8).collect(),
            true,
            true,
        );
        let k0 = sim.mount(
            Box::new(gpu_kernel(GpuBenchmark(tenants[0].1), 36, scale)),
            (8..44).collect(),
            false,
            true,
        );
        let k1 = sim.mount(
            Box::new(gpu_kernel(GpuBenchmark(tenants[1].1), 36, scale)),
            (44..80).collect(),
            false,
            true,
        );
        let _ = sim.run_with_starvation_cutoff(6_000_000, Some(25));
        let speedup = |k: usize, base: u64| {
            sim.kernels()[k]
                .first_run_cycles
                .map_or(0.0, |c| base as f64 / c as f64)
        };
        let s0 = speedup(k0, alone[0]);
        let s1 = speedup(k1, alone[1]);
        let sp = speedup(kp, pim_alone);
        let speeds = [s0, s1, sp];
        let min = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        t.row(vec![
            policy.label().into(),
            f3(s0),
            f3(s1),
            f3(sp),
            f3(if max > 0.0 { min / max } else { 0.0 }),
        ]);
    }
    println!("{}", t.render());
    println!(
        "min/max fairness generalizes the two-application fairness index; PIM-First\n\
         crushes both GPU tenants while F3FS's caps keep all three progressing."
    );
}
