//! Trace-driven simulation: record a synthetic kernel's memory trace, save
//! it to the text format, reload it, and replay it through the simulator —
//! the workflow for running third-party memory traces.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use pim_coscheduling::gpu::{read_trace, write_trace, TraceKernel, TraceRecorder};
use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::workloads::gpu_kernel;

fn main() {
    let scale = 0.1;
    let sms = 40;

    // 1. Record: wrap the synthetic kernel, run it standalone.
    let recorder = TraceRecorder::new(Box::new(gpu_kernel(GpuBenchmark(5), sms, scale)));
    let mut sim = Simulator::new(SystemConfig::default(), PolicyKind::FrFcfs);
    let k = sim.mount(Box::new(recorder), (0..sms).collect(), false, false);
    sim.run_until_all_first_done(10_000_000)
        .expect("record run");
    let recorded_cycles = sim.kernels()[k].first_run_cycles.expect("finished");
    // Reclaim the recorder to extract its records.
    let records = {
        // The simulator owns the kernel; rerun the capture outside it
        // instead: drive the recorder directly at the recorded pace.
        let mut rec = TraceRecorder::new(Box::new(gpu_kernel(GpuBenchmark(5), sms, scale)));
        let mut id = 0u64;
        for now in 0..200_000u64 {
            for slot in 0..sms {
                if let Some(_r) = pim_coscheduling::gpu::KernelModel::try_issue(
                    &mut rec,
                    slot,
                    now,
                    pim_coscheduling::types::RequestId(id),
                ) {
                    pim_coscheduling::gpu::KernelModel::on_complete(
                        &mut rec,
                        slot,
                        pim_coscheduling::types::RequestId(id),
                        now,
                    );
                    id += 1;
                }
            }
            if pim_coscheduling::gpu::KernelModel::is_done(&rec) {
                break;
            }
        }
        rec.into_records()
    };
    println!(
        "recorded {} requests from G5 (dwt2d) on {sms} SMs",
        records.len()
    );

    // 2. Serialize to the text format and parse it back.
    let mut text = Vec::new();
    write_trace(&mut text, &records).expect("serialize");
    println!("trace text: {} bytes, first lines:", text.len());
    for line in String::from_utf8_lossy(&text).lines().take(3) {
        println!("  {line}");
    }
    let reloaded = read_trace(text.as_slice()).expect("parse");
    assert_eq!(reloaded.len(), records.len());

    // 3. Replay through the full simulator.
    let replay = TraceKernel::new("dwt2d-trace", sms, reloaded);
    let mut sim = Simulator::new(SystemConfig::default(), PolicyKind::FrFcfs);
    let k = sim.mount(Box::new(replay), (0..sms).collect(), false, false);
    sim.run_until_all_first_done(10_000_000)
        .expect("replay run");
    let replayed_cycles = sim.kernels()[k].first_run_cycles.expect("finished");
    println!(
        "synthetic run: {recorded_cycles} cycles; trace replay: {replayed_cycles} cycles \
         (replay paces issues at the recorded cycles, so times should be close)"
    );
}
