//! Quickstart: co-run one GPU kernel with one PIM kernel and print the
//! paper's key metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pim_coscheduling::prelude::*;

fn main() {
    // Table I system: 80 SMs, 32 HBM channels x 16 banks, 6 MB L2.
    let system = SystemConfig::default();
    let scale = 0.05; // fast demo footprint

    // F3FS with the symmetric competitive CAP (scaled from the paper's 256).
    let policy = PolicyKind::f3fs_competitive();

    // Standalone baselines: the GPU kernel alone on all 80 SMs, the PIM
    // kernel alone on 8 SMs (32 warps, one per channel).
    let runner = Runner::new(system.clone(), policy);
    let gpu_alone = runner
        .standalone(Box::new(gpu_kernel(GpuBenchmark(4), 80, scale)), 0, false)
        .expect("GPU standalone run")
        .cycles;
    let pim_alone = runner
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, scale)),
            0,
            true,
        )
        .expect("PIM standalone run")
        .cycles;
    println!("standalone: G4 (cfd) = {gpu_alone} cycles, P1 (Stream Add) = {pim_alone} cycles");

    // Competitive co-execution: GPU on 72 SMs, PIM on 8, looped until each
    // completes one run (the paper's methodology).
    let out = runner.coexec(
        Box::new(gpu_kernel(GpuBenchmark(4), 72, scale)),
        Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, scale)),
        true,
    );
    let m = out.metrics(gpu_alone, pim_alone);
    println!(
        "co-execution under {}: GPU first run = {} cycles, PIM first run = {} cycles",
        policy, out.gpu_first_run, out.pim_first_run
    );
    println!(
        "speedups: MEM {:.3}, PIM {:.3} | fairness index {:.3} | system throughput {:.3}",
        m.mem_speedup,
        m.pim_speedup,
        m.fairness_index(),
        m.system_throughput()
    );
    println!(
        "memory controller: {} mode switches, MEM RBHR {:.1}%, avg BLP {:.1}",
        out.mc.switches,
        out.mc.mem_rbhr().unwrap_or(0.0) * 100.0,
        out.mc.avg_blp().unwrap_or(0.0)
    );
}
