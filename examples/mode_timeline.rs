//! ASCII timeline of MEM/PIM mode switching on one memory channel —
//! Figure 9's story made visible: compare how often each policy switches
//! and how long its phases run.
//!
//! `M` = MEM mode, `p` = PIM mode; each character is a 25-GPU-cycle bucket
//! (majority mode within the bucket).
//!
//! ```sh
//! cargo run --release --example mode_timeline
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::workloads::{gpu_kernel, pim_kernel};

fn main() {
    let scale = 0.3;
    let policies = [
        PolicyKind::Fcfs,
        PolicyKind::FrFcfs,
        PolicyKind::FrRrFcfs,
        PolicyKind::GatherIssue { high: 56, low: 32 },
        PolicyKind::f3fs_competitive(),
    ];
    println!("mode of channel 0 over time (each char = 25 GPU cycles; M=MEM, p=PIM)\n");
    for policy in policies {
        let mut sim = Simulator::new(SystemConfig::default(), policy);
        sim.mount(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, scale)),
            (0..8).collect(),
            true,
            true,
        );
        sim.mount(
            Box::new(gpu_kernel(GpuBenchmark(11), 72, scale)),
            (8..80).collect(),
            false,
            true,
        );
        let mut strip = String::new();
        for _bucket in 0..96 {
            let mut mem = 0u32;
            for _ in 0..25 {
                sim.step();
                if sim.partition(0).mc.mode() == Mode::Mem {
                    mem += 1;
                }
            }
            strip.push(if mem >= 13 { 'M' } else { 'p' });
        }
        let s = sim.merged_mc_stats();
        println!("{:12} {strip}", policy.label());
        println!(
            "{:12} switches so far: {} across 32 channels\n",
            "", s.switches
        );
    }
    println!(
        "FCFS flips with every arrival-order inversion; FR-RR-FCFS rotates at each\n\
         row conflict; F3FS holds long phases and pays far fewer switches."
    );
}
