//! Compare all nine scheduling policies on one GPU/PIM pair, under both
//! interconnect configurations (VC1 = shared queues, VC2 = separate PIM
//! virtual channel).
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::stats::table::{f3, Table};

fn main() {
    let scale = 0.05;
    let gpu = GpuBenchmark(11); // kmeans: heavy DRAM traffic
    let pim = PimBenchmark(4); // Stream Scale: near-perfect row locality

    // Policy-independent standalone baselines.
    let base_runner = Runner::new(SystemConfig::default(), PolicyKind::FrFcfs);
    let gpu_alone = base_runner
        .standalone(Box::new(gpu_kernel(gpu, 80, scale)), 0, false)
        .expect("GPU standalone")
        .cycles;
    let pim_alone = base_runner
        .standalone(Box::new(pim_kernel(pim, 32, 4, 256, scale)), 0, true)
        .expect("PIM standalone")
        .cycles;

    println!("co-executing {gpu} with {pim} (scale {scale})\n");
    let mut t = Table::new(vec![
        "policy".into(),
        "VC".into(),
        "MEM speedup".into(),
        "PIM speedup".into(),
        "fairness".into(),
        "throughput".into(),
        "switches".into(),
    ]);
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        for policy in PolicyKind::all() {
            let mut system = SystemConfig::default();
            system.noc.vc_mode = vc;
            let mut runner = Runner::new(system, policy);
            runner.max_gpu_cycles = 10_000_000;
            let out = runner.coexec(
                Box::new(gpu_kernel(gpu, 72, scale)),
                Box::new(pim_kernel(pim, 32, 4, 256, scale)),
                true,
            );
            let m = out.metrics(gpu_alone, pim_alone);
            t.row(vec![
                policy.label().into(),
                vc.label().into(),
                f3(m.mem_speedup),
                f3(m.pim_speedup),
                f3(m.fairness_index()),
                f3(m.system_throughput()),
                out.mc.switches.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(starved kernels report a speedup of 0 — the paper's fairness-index-0 cases)");
}
