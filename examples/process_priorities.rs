//! Process priorities through asymmetric F3FS CAPs — the paper's
//! Section VII future-work direction: "These asymmetric CAPs can also be
//! configured by system software to enforce process priorities in
//! competitive scenarios."
//!
//! This example sweeps the MEM:PIM CAP ratio for one competitive pair and
//! shows how the ratio dials the speedup split between the two
//! applications — a knob an OS scheduler could drive from nice values.
//!
//! ```sh
//! cargo run --release --example process_priorities
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::stats::table::{f3, Table};

fn main() {
    let scale = 0.2;
    let gpu = GpuBenchmark(9); // hotspot3D: moderate memory intensity
    let pim = PimBenchmark(1); // Stream Add

    let solo = Runner::new(SystemConfig::default(), PolicyKind::FrFcfs);
    let gpu_alone = solo
        .standalone(Box::new(gpu_kernel(gpu, 80, scale)), 0, false)
        .expect("GPU standalone")
        .cycles;
    let pim_alone = solo
        .standalone(Box::new(pim_kernel(pim, 32, 4, 256, scale)), 0, true)
        .expect("PIM standalone")
        .cycles;

    println!("dialing priorities between {gpu} and {pim} via F3FS CAP asymmetry\n");
    let mut t = Table::new(vec![
        "MEM cap : PIM cap".into(),
        "MEM speedup".into(),
        "PIM speedup".into(),
        "fairness".into(),
        "throughput".into(),
    ]);
    // From strongly PIM-prioritized to strongly GPU-prioritized.
    for (mem_cap, pim_cap) in [(8u32, 128u32), (16, 64), (32, 32), (64, 16), (128, 8)] {
        let mut runner = Runner::new(
            SystemConfig::default(),
            PolicyKind::F3fs { mem_cap, pim_cap },
        );
        runner.max_gpu_cycles = 6_000_000;
        let out = runner.coexec(
            Box::new(gpu_kernel(gpu, 72, scale)),
            Box::new(pim_kernel(pim, 32, 4, 256, scale)),
            true,
        );
        let m = out.metrics(gpu_alone, pim_alone);
        t.row(vec![
            format!("{mem_cap:>4} : {pim_cap}"),
            f3(m.mem_speedup),
            f3(m.pim_speedup),
            f3(m.fairness_index()),
            f3(m.system_throughput()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Raising the MEM CAP (more MEM requests may bypass an older PIM request before\n\
         a switch) shifts service toward the GPU kernel, and vice versa — priorities\n\
         without starving either side, since both CAPs stay finite."
    );
}
