//! The collaborative LLM scenario (Section III-B): overlap GPT-3-like QKV
//! generation on the GPU with multi-head attention on PIM, and show how
//! F3FS's asymmetric CAPs tune the overlap.
//!
//! ```sh
//! cargo run --release --example llm_collaborative
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::CollabOutcome;
use pim_coscheduling::stats::table::{f3, Table};
use pim_coscheduling::workloads::llm_scenario;

fn main() {
    let scale = 0.2;
    let system = SystemConfig::default();

    // Standalone times: the speedup baseline is sequential execution.
    let solo = Runner::new(system.clone(), PolicyKind::FrFcfs);
    let s = llm_scenario(72, 32, 4, 256, scale);
    let qkv_alone = solo
        .standalone(Box::new(s.qkv), 8, false)
        .expect("QKV standalone")
        .cycles;
    let s = llm_scenario(72, 32, 4, 256, scale);
    let mha_alone = solo
        .standalone(Box::new(s.mha), 0, true)
        .expect("MHA standalone")
        .cycles;
    let ideal = CollabOutcome::ideal_speedup(qkv_alone, mha_alone);
    println!("QKV alone: {qkv_alone} cycles, MHA alone: {mha_alone} cycles");
    println!(
        "sequential: {} cycles, ideal overlap speedup: {ideal:.3}\n",
        qkv_alone + mha_alone
    );

    let mut t = Table::new(vec![
        "policy".into(),
        "MEM/PIM cap".into(),
        "VC".into(),
        "speedup vs sequential".into(),
    ]);
    // The paper's tuned CAPs: 256/128 under VC1, 64/64 under VC2, compared
    // against plain FR-FCFS and the PIM-draining G&I.
    let candidates: Vec<(PolicyKind, &str)> = vec![
        (PolicyKind::FrFcfs, "-"),
        (PolicyKind::GatherIssue { high: 56, low: 32 }, "-"),
        (
            PolicyKind::F3fs {
                mem_cap: 32,
                pim_cap: 16,
            },
            "32/16",
        ),
        (
            PolicyKind::F3fs {
                mem_cap: 8,
                pim_cap: 8,
            },
            "8/8",
        ),
    ];
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        for &(policy, caps) in &candidates {
            let mut sys = system.clone();
            sys.noc.vc_mode = vc;
            let mut runner = Runner::new(sys, policy);
            runner.max_gpu_cycles = 20_000_000;
            let sc = llm_scenario(72, 32, 4, 256, scale);
            let speedup = match runner.collaborative(Box::new(sc.qkv), Box::new(sc.mha)) {
                Ok(out) => out.speedup(qkv_alone, mha_alone),
                Err(_) => 0.0,
            };
            t.row(vec![
                policy.label().into(),
                caps.into(),
                vc.label().into(),
                f3(speedup),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Ideal = {:.3} (perfect overlap of the two stages)", ideal);
}
