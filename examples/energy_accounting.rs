//! The PIM energy argument, quantified: run the same vector-add work once
//! as a PIM kernel (compute at the banks) and once as an equivalent
//! load/store GPU kernel (move everything across the bus), and compare
//! DRAM energy with the extension energy model.
//!
//! ```sh
//! cargo run --release --example energy_accounting
//! ```

use pim_coscheduling::dram::EnergyConfig;
use pim_coscheduling::gpu::{GpuKernelParams, KernelModel, SyntheticGpuKernel};
use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::workloads::pim_kernel;

fn main() {
    let energy = EnergyConfig::default();
    let scale = 0.3;

    // PIM STREAM-Add: 3 ops per element chunk, all at the banks.
    let pim = pim_kernel(PimBenchmark(1), 32, 4, 256, scale);
    let pim_ops = pim.total_requests();
    let mut sim = Simulator::new(SystemConfig::default(), PolicyKind::FrFcfs);
    sim.mount(Box::new(pim), (0..8).collect(), true, false);
    sim.run_until_all_first_done(10_000_000).expect("PIM run");
    let pim_cycles = sim.gpu_cycles();
    let pim_energy = sim.total_energy(&energy);

    // Host-side equivalent: one lock-step PIM op touches a DRAM word on
    // every bank, so the host must issue banks-times as many 32 B
    // loads/stores, streaming (uncached).
    let banks = SystemConfig::default().dram.banks as u64;
    let host = SyntheticGpuKernel::new(
        GpuKernelParams {
            name: "host-vector-add".into(),
            total_requests: pim_ops * banks,
            issue_interval: 2,
            read_fraction: 2.0 / 3.0, // load a, load b, store c
            footprint_bytes: 64 * 1024 * 1024,
            row_locality: 0.95,
            l2_reuse: 0.0, // streaming: nothing is reused
            streams_per_slot: 4,
            seed: 7,
        },
        72,
    );
    let mut sim = Simulator::new(SystemConfig::default(), PolicyKind::FrFcfs);
    sim.mount(Box::new(host), (8..80).collect(), false, false);
    sim.run_until_all_first_done(10_000_000).expect("host run");
    let host_cycles = sim.gpu_cycles();
    let host_energy = sim.total_energy(&energy);

    println!(
        "vector add: {pim_ops} PIM ops x {banks} banks = {} x 32 B words touched\n",
        pim_ops * banks
    );
    for (label, cycles, e) in [
        ("PIM (at the banks)", pim_cycles, &pim_energy),
        ("host (across the bus)", host_cycles, &host_energy),
    ] {
        println!("{label}: {cycles} GPU cycles");
        println!(
            "  energy: {:.1} µJ total (row {:.1}, array {:.1}, I/O {:.1}, PIM {:.1}, background {:.1})",
            e.total() / 1e6,
            e.row / 1e6,
            e.mem_array / 1e6,
            e.io / 1e6,
            e.pim / 1e6,
            e.background / 1e6
        );
    }
    let dyn_pim = pim_energy.total() - pim_energy.background;
    let dyn_host = host_energy.total() - host_energy.background;
    println!(
        "\ndynamic-energy ratio host/PIM: {:.2}x (I/O elimination is the win — the\n\
         bus-crossing term is {:.1} µJ for the host and {:.1} µJ for PIM)",
        dyn_host / dyn_pim,
        host_energy.io / 1e6,
        pim_energy.io / 1e6
    );
}
