//! Anatomy of the denial-of-service chain (Figure 7a): watch the queues
//! fill from the memory controller backwards into the interconnect when a
//! PIM kernel floods a shared-VC system, and how the separate PIM virtual
//! channel (Figure 7b) keeps the MEM path clear.
//!
//! Prints a time series of occupancies: NoC input buffers, the
//! interconnect→L2 and L2→DRAM staging queues, and the MC's MEM/PIM
//! queues (summed across the 32 partitions).
//!
//! ```sh
//! cargo run --release --example congestion_anatomy
//! ```

use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::workloads::{gpu_kernel, pim_kernel};

fn snapshot(sim: &Simulator) -> (usize, usize, usize, usize, usize) {
    let mut icnt = 0;
    let mut l2d = 0;
    let mut memq = 0;
    let mut pimq = 0;
    for p in sim.partitions() {
        for vc in 0..p.vc_count() {
            icnt += p.icnt_q_len(vc);
            l2d += p.l2dram_q_len(vc);
        }
        memq += p.mc.mem_q_len();
        pimq += p.mc.pim_q_len();
    }
    (sim.request_noc_occupancy(), icnt, l2d, memq, pimq)
}

fn main() {
    let scale = 0.3;
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        let mut system = SystemConfig::default();
        system.noc.vc_mode = vc;
        // MEM-First: the policy that *should* protect MEM but cannot when
        // the shared interconnect is already full of PIM flits.
        let mut sim = Simulator::new(system, PolicyKind::MemFirst);
        sim.mount(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, scale)),
            (0..8).collect(),
            true,
            true,
        );
        sim.mount(
            Box::new(gpu_kernel(GpuBenchmark(19), 72, scale)),
            (8..80).collect(),
            false,
            true,
        );
        println!("\n=== {vc} under MEM-First: queue occupancies over time ===");
        println!(
            "{:>7} {:>8} {:>9} {:>8} {:>7} {:>7}",
            "cycle", "NoC", "icnt->L2", "L2->DRAM", "MEM-Q", "PIM-Q"
        );
        for step in 0..20 {
            for _ in 0..250 {
                sim.step();
            }
            let (noc, icnt, l2d, memq, pimq) = snapshot(&sim);
            println!(
                "{:>7} {:>8} {:>9} {:>8} {:>7} {:>7}",
                (step + 1) * 250,
                noc,
                icnt,
                l2d,
                memq,
                pimq
            );
        }
        let s = sim.request_noc_stats();
        println!(
            "NoC totals: injected {}, delivered {}, inject stalls {}, eject stalls {}",
            s.injected, s.ejected, s.inject_stalls, s.eject_stalls
        );
    }
    println!(
        "\nUnder VC1 the PIM flood parks in every shared queue and the NoC backs up;\n\
         under VC2 the PIM VC absorbs the flood while the MEM path stays shallow."
    );
}
